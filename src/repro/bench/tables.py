"""Text renderers for every table and figure of the paper's evaluation.

Each function takes measurement outcomes from :mod:`repro.bench.harness`
and prints the same rows the paper reports, with the paper's own numbers
alongside for comparison.  Absolute values differ (cluster vs laptop, GB vs
MB); the *shapes* — who wins, by what factor, where the DNFs fall — are the
reproduction targets.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.metrics import bytes_to_human
from ..graphs.datasets import get_dataset_spec
from .harness import RunOutcome

#: Table III of the paper: runtimes in seconds (— marks "did not finish").
PAPER_TABLE3 = {
    "andromeda": {"rc": 5431, "hm": None, "tp": 37987, "cr": 14506},
    "bitcoin_addresses": {"rc": 1530, "hm": 11696, "tp": 9811, "cr": 3457},
    "bitcoin_full": {"rc": 6398, "hm": None, "tp": 77359, "cr": 26015},
    "candels10": {"rc": 424, "hm": 3178, "tp": 1425, "cr": 867},
    "candels20": {"rc": 749, "hm": 5868, "tp": 2836, "cr": 1766},
    "candels40": {"rc": 1482, "hm": 13892, "tp": 6363, "cr": 3726},
    "candels80": {"rc": 3463, "hm": None, "tp": 15560, "cr": 8619},
    "candels160": {"rc": 9260, "hm": None, "tp": 32615, "cr": 23409},
    "friendster": {"rc": 2462, "hm": 9554, "tp": 4409, "cr": 5092},
    "rmat": {"rc": 2151, "hm": 4384, "tp": 2816, "cr": 3187},
    "path100m": {"rc": 366, "hm": None, "tp": 1406, "cr": None},
    "pathunion10": {"rc": 386, "hm": None, "tp": 4022, "cr": 1202},
}

#: Table IV: maximum space used in GB ("input" column included).
PAPER_TABLE4 = {
    "andromeda": {"input": 59, "rc": 276, "hm": None, "tp": 115, "cr": 263},
    "bitcoin_addresses": {"input": 21, "rc": 109, "hm": 88, "tp": 43, "cr": 110},
    "bitcoin_full": {"input": 72, "rc": 255, "hm": None, "tp": 108, "cr": 272},
    "candels10": {"input": 6, "rc": 27, "hm": 21, "tp": 12, "cr": 24},
    "candels20": {"input": 12, "rc": 55, "hm": 42, "tp": 24, "cr": 50},
    "candels40": {"input": 25, "rc": 110, "hm": 86, "tp": 48, "cr": 100},
    "candels80": {"input": 50, "rc": 221, "hm": None, "tp": 96, "cr": 201},
    "candels160": {"input": 102, "rc": 443, "hm": None, "tp": 193, "cr": 403},
    "friendster": {"input": 47, "rc": 190, "hm": 183, "tp": 91, "cr": 181},
    "rmat": {"input": 54, "rc": 217, "hm": 120, "tp": 86, "cr": 169},
    "path100m": {"input": 3, "rc": 13, "hm": None, "tp": 5, "cr": None},
    "pathunion10": {"input": 4, "rc": 20, "hm": None, "tp": 8, "cr": 20},
}

#: Table V: total gigabytes written.
PAPER_TABLE5 = {
    "andromeda": {"input": 59, "rc": 552, "hm": None, "tp": 1768, "cr": 905},
    "bitcoin_addresses": {"input": 21, "rc": 215, "hm": 804, "tp": 557, "cr": 306},
    "bitcoin_full": {"input": 72, "rc": 690, "hm": None, "tp": 1858, "cr": 1151},
    "candels10": {"input": 6, "rc": 48, "hm": 148, "tp": 93, "cr": 61},
    "candels20": {"input": 12, "rc": 97, "hm": 295, "tp": 179, "cr": 125},
    "candels40": {"input": 25, "rc": 196, "hm": 618, "tp": 369, "cr": 251},
    "candels80": {"input": 50, "rc": 394, "hm": None, "tp": 774, "cr": 504},
    "candels160": {"input": 102, "rc": 790, "hm": None, "tp": 1481, "cr": 1009},
    "friendster": {"input": 47, "rc": 309, "hm": 481, "tp": 258, "cr": 294},
    "rmat": {"input": 54, "rc": 259, "hm": 248, "tp": 169, "cr": 177},
    "path100m": {"input": 3, "rc": 31, "hm": None, "tp": 75, "cr": None},
    "pathunion10": {"input": 4, "rc": 48, "hm": None, "tp": 264, "cr": 116},
}

#: Short algorithm codes as in the paper's table headers.
ALGO_CODES = {
    "randomised-contraction": "rc",
    "hash-to-min": "hm",
    "two-phase": "tp",
    "cracker": "cr",
}


def algo_code(name: str) -> str:
    for prefix, code in ALGO_CODES.items():
        if name.startswith(prefix):
            return code
    return name


def _grid(outcomes: Sequence[RunOutcome]) -> tuple[list[str], list[str],
                                                   dict[tuple[str, str], RunOutcome]]:
    datasets: list[str] = []
    algorithms: list[str] = []
    cells: dict[tuple[str, str], RunOutcome] = {}
    for outcome in outcomes:
        code = algo_code(outcome.algorithm)
        if outcome.dataset not in datasets:
            datasets.append(outcome.dataset)
        if code not in algorithms:
            algorithms.append(code)
        cells[(outcome.dataset, code)] = outcome
    return datasets, algorithms, cells


def _render(headers: list[str], rows: list[list[str]], title: str) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_table2(rows: Sequence[tuple[str, int, int, int]]) -> str:
    """Table II: dataset sizes.  ``rows`` = (name, |V|, |E|, components)."""
    headers = ["dataset", "|V|", "|E|", "components",
               "paper |V|", "paper |E|", "paper comps"]
    body = []
    for name, n_vertices, n_edges, n_components in rows:
        spec = get_dataset_spec(name)
        body.append([
            name, f"{n_vertices:,}", f"{n_edges:,}", f"{n_components:,}",
            f"{spec.paper_vertices_m:,.0f} M", f"{spec.paper_edges_m:,.0f} M",
            spec.paper_components,
        ])
    return _render(headers, body,
                   "TABLE II - DATASETS (reproduction scale vs paper scale)")


def render_table3(outcomes: Sequence[RunOutcome]) -> str:
    """Table III: runtimes in seconds, DNF as the paper's dashes."""
    datasets, algorithms, cells = _grid(outcomes)
    headers = ["dataset"] + [a.upper() for a in algorithms] \
        + [f"paper {a.upper()}" for a in algorithms]
    body = []
    for dataset in datasets:
        row = [dataset]
        for algorithm in algorithms:
            outcome = cells.get((dataset, algorithm))
            if outcome is None:
                row.append("")
            elif not outcome.ok:
                row.append("-")
            else:
                row.append(f"{outcome.seconds:.2f}")
        paper = PAPER_TABLE3.get(dataset, {})
        for algorithm in algorithms:
            value = paper.get(algorithm)
            row.append("-" if value is None else str(value))
        body.append(row)
    return _render(headers, body,
                   "TABLE III - RUNTIMES IN SECONDS ('-' = did not finish)")


def _space_table(outcomes: Sequence[RunOutcome], attr: str, paper: dict,
                 title: str) -> str:
    datasets, algorithms, cells = _grid(outcomes)
    headers = ["dataset", "input"] + algorithms \
        + [f"x{a}" for a in algorithms] + ["paper x" + "/".join(algorithms)]
    body = []
    for dataset in datasets:
        input_bytes = None
        row = [dataset]
        values = []
        for algorithm in algorithms:
            outcome = cells.get((dataset, algorithm))
            if outcome is not None:
                input_bytes = outcome.input_bytes
        row.append(bytes_to_human(input_bytes or 0))
        for algorithm in algorithms:
            outcome = cells.get((dataset, algorithm))
            if outcome is None or not outcome.ok:
                row.append("-")
                values.append(None)
            else:
                value = getattr(outcome, attr)
                row.append(bytes_to_human(value))
                values.append(value)
        for value in values:
            if value is None or not input_bytes:
                row.append("-")
            else:
                row.append(f"{value / input_bytes:.1f}")
        paper_row = paper.get(dataset, {})
        ratios = []
        for algorithm in algorithms:
            value = paper_row.get(algorithm)
            if value is None or not paper_row.get("input"):
                ratios.append("-")
            else:
                ratios.append(f"{value / paper_row['input']:.1f}")
        row.append("/".join(ratios))
        body.append(row)
    return _render(headers, body, title)


def render_table4(outcomes: Sequence[RunOutcome]) -> str:
    """Table IV: maximum space used, absolute and as a ratio to the input."""
    return _space_table(
        outcomes, "peak_bytes", PAPER_TABLE4,
        "TABLE IV - MAXIMUM SPACE USED (xALG = ratio to input size)")


def render_table5(outcomes: Sequence[RunOutcome]) -> str:
    """Table V: total data written, absolute and as a ratio to the input."""
    return _space_table(
        outcomes, "written_bytes", PAPER_TABLE5,
        "TABLE V - TOTAL DATA WRITTEN (xALG = ratio to input size)")


def render_figure6(outcomes: Sequence[RunOutcome], width: int = 50) -> str:
    """Figure 6: horizontal bar chart of the Table III runtimes."""
    datasets, algorithms, cells = _grid(outcomes)
    finished = [o.seconds for o in outcomes if o.ok]
    if not finished:
        return "FIGURE 6 - (no finished runs)"
    longest = max(finished)
    lines = ["FIGURE 6 - IN-DATABASE EXECUTION TIMES", ""]
    for dataset in datasets:
        lines.append(dataset)
        for algorithm in algorithms:
            outcome = cells.get((dataset, algorithm))
            if outcome is None:
                continue
            if outcome.ok:
                bar = "#" * max(1, int(width * outcome.seconds / longest))
                lines.append(
                    f"  {algorithm.upper():3s} |{bar} {outcome.seconds:.2f}s"
                )
            else:
                lines.append(f"  {algorithm.upper():3s} |did not finish")
        lines.append("")
    return "\n".join(lines)


def render_table1(measured_rows: Optional[Sequence[tuple[str, int, int]]] = None) -> str:
    """Table I: proven step/space complexities, plus measured RC rounds.

    ``measured_rows`` = (dataset, |V|, rounds) tuples demonstrating the
    O(log |V|) query count empirically.
    """
    lines = [
        "TABLE I - CONNECTED COMPONENT ALGORITHMS (proven bounds)",
        "",
        "  algorithm                number of steps     space",
        "  -----------------------  ------------------  -------------------",
        "  Randomised Contraction   exp. O(log |V|)     exp. O(|E|)",
        "  Hash-to-Min              O(log |V|)          O(|V|^2)",
        "  Two-Phase                O(log^2 |V|)        O(|E|)",
        "  Cracker                  O(log |V|)          O(|V|*|E| / log |V|)",
    ]
    if measured_rows:
        lines.append("")
        lines.append("  measured Randomised Contraction rounds vs log2|V|:")
        for dataset, n_vertices, rounds in measured_rows:
            import math

            log_v = math.log2(max(n_vertices, 2))
            lines.append(
                f"    {dataset:20s} |V|={n_vertices:>9,d} rounds={rounds:>3d} "
                f"log2|V|={log_v:5.1f}  rounds/log2|V|={rounds / log_v:4.2f}"
            )
    return "\n".join(lines)
