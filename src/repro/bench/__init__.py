"""Benchmark harness and paper-table renderers."""

from .harness import DEFAULT_BUDGET_FACTOR, Harness, RunOutcome, mean_outcomes
from .scale import bench_reps, bench_scale
from .tables import (
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    render_figure6,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)

__all__ = [
    "DEFAULT_BUDGET_FACTOR",
    "Harness",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "RunOutcome",
    "bench_reps",
    "bench_scale",
    "mean_outcomes",
    "render_figure6",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
]
