"""Benchmark scaling knobs (environment-driven).

The paper's experiments run at 10^8..10^9 edges on a five-node cluster; the
reproduction defaults to ~10^5..10^6 edges in-process.  Two environment
variables adjust the effort without touching code:

``REPRO_SCALE``
    Linear multiplier on dataset sizes (default 1.0; see
    :mod:`repro.graphs.datasets`).

``REPRO_REPS``
    Repetitions per (dataset, algorithm) measurement.  The paper uses 3 and
    reports mean and relative standard deviation (Section VII-B); the
    default here is 1 to keep the full suite quick.
"""

from __future__ import annotations

import os

from ..graphs.datasets import default_scale


def bench_scale() -> float:
    """Dataset scale factor for benchmarks (REPRO_SCALE, default 1.0)."""
    return default_scale()


def bench_reps() -> int:
    """Repetitions per measurement (REPRO_REPS, default 1)."""
    raw = os.environ.get("REPRO_REPS", "1")
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_REPS must be an integer, got {raw!r}")
    if value < 1:
        raise ValueError("REPRO_REPS must be at least 1")
    return value
