"""Arithmetic over the finite field GF(2^64).

This is the field the paper's "finite fields method" uses for randomising
vertex IDs (Section V-C).  Elements are 64-bit integers interpreted as
polynomials over GF(2); multiplication is carry-less polynomial
multiplication reduced modulo the irreducible polynomial

    x^64 + x^4 + x^3 + x + 1        (low word 0x1b)

which is the exact polynomial used by the paper's C user-defined function
``axplusb`` (Appendix A, Figure 7).

Two call styles are provided:

* scalar functions on Python ints (``gf2_mul``, ``gf2_axplusb``, ...), which
  mirror the C code bit-for-bit and serve as the reference implementation;
* a vectorised evaluator (:class:`Gf2AffineMap`) that applies
  ``h(x) = A*x + B`` to whole numpy arrays using 8-bit table lookups.  This
  is what the SQL engine's ``axplusb`` UDF uses so that a contraction round
  over millions of edges stays fast.

All values are canonically represented as *unsigned* 64-bit integers
(``0 <= value < 2**64``).  Helpers convert to/from the signed int64 view
used for database storage.
"""

from __future__ import annotations

import numpy as np

#: Low bits of the irreducible reduction polynomial x^64 + x^4 + x^3 + x + 1.
IRREDUCIBLE_POLY = 0x1B

#: Mask selecting 64 bits.
MASK64 = (1 << 64) - 1


def to_unsigned(value: int) -> int:
    """Map a signed or unsigned 64-bit integer to its unsigned residue."""
    return value & MASK64


def to_signed(value: int) -> int:
    """Map an unsigned 64-bit integer to the equivalent signed int64."""
    value &= MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def gf2_xtime(a: int) -> int:
    """Multiply ``a`` by x (i.e. shift left) and reduce modulo the polynomial."""
    a = to_unsigned(a)
    if a >> 63:
        return ((a << 1) ^ IRREDUCIBLE_POLY) & MASK64
    return (a << 1) & MASK64


def gf2_mul(a: int, x: int) -> int:
    """Carry-less product ``a * x`` in GF(2^64).

    This is the shift-and-add loop of the paper's C function, Figure 7.
    """
    a = to_unsigned(a)
    x = to_unsigned(x)
    result = 0
    while x:
        if x & 1:
            result ^= a
        x >>= 1
        a = gf2_xtime(a)
    return result


def gf2_axplusb(a: int, x: int, b: int) -> int:
    """Affine map ``a*x + b`` over GF(2^64) (addition is XOR)."""
    return gf2_mul(a, x) ^ to_unsigned(b)


def gf2_pow(a: int, exponent: int) -> int:
    """Raise ``a`` to a non-negative integer power by square-and-multiply."""
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    result = 1
    base = to_unsigned(a)
    while exponent:
        if exponent & 1:
            result = gf2_mul(result, base)
        base = gf2_mul(base, base)
        exponent >>= 1
    return result


def gf2_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^64).

    Uses Fermat's little theorem for the field of order q = 2^64:
    ``a^(q-2)`` is the inverse of any non-zero ``a``.
    """
    a = to_unsigned(a)
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(2^64)")
    return gf2_pow(a, (1 << 64) - 2)


def _basis_products(a: int) -> list[int]:
    """Return ``a * x^k`` for ``k = 0..63`` (the row basis of multiplication)."""
    products = []
    value = to_unsigned(a)
    for _ in range(64):
        products.append(value)
        value = gf2_xtime(value)
    return products


class Gf2AffineMap:
    """Vectorised evaluator for ``h(x) = A*x + B`` over GF(2^64).

    Multiplication by a constant ``A`` is GF(2)-linear in ``x``, so the map
    decomposes into one 256-entry lookup table per byte of ``x``:

        A * x = XOR over bytes j of  T_j[ byte_j(x) ]

    Building the 8 tables costs a few thousand scalar operations once per
    contraction round; applying the map is then 8 ``np.take`` gathers plus
    XORs per batch, which is what makes the finite-fields method practical
    in a Python-hosted engine.
    """

    def __init__(self, a: int, b: int):
        a = to_unsigned(a)
        if a == 0:
            raise ValueError("A must be non-zero so that h is a bijection")
        self.a = a
        self.b = to_unsigned(b)
        basis = _basis_products(a)
        tables = np.zeros((8, 256), dtype=np.uint64)
        for j in range(8):
            table = tables[j]
            for bit in range(8):
                stride = 1 << bit
                value = basis[8 * j + bit]
                # table[i] for i with this bit set = table[i - stride] ^ value
                table[stride: 2 * stride] = table[:stride] ^ np.uint64(value)
        self._tables = tables

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Apply ``h`` to an array of unsigned 64-bit integers."""
        x = np.ascontiguousarray(x, dtype=np.uint64)
        result = np.full(x.shape, np.uint64(self.b), dtype=np.uint64)
        for j in range(8):
            byte = (x >> np.uint64(8 * j)).astype(np.uint8)
            result ^= self._tables[j][byte]
        return result

    def apply_scalar(self, x: int) -> int:
        """Apply ``h`` to a single integer (reference path, for testing)."""
        return gf2_axplusb(self.a, x, self.b)

    def inverse(self) -> "Gf2AffineMap":
        """Return the inverse affine map ``h^-1(y) = A^-1 * (y + B)``."""
        a_inv = gf2_inv(self.a)
        return Gf2AffineMap(a_inv, gf2_mul(a_inv, self.b))
