"""The Blowfish block cipher, used as a pseudo-random permutation of IDs.

Section V-C of the paper proposes the "encryption method" for vertex-ID
randomisation: since an encryption function is by definition a bijection on
its block domain, encrypting 64-bit vertex IDs with a fresh random key per
contraction round yields a pseudo-random relabelling without shipping a
random number per vertex across the cluster.  The paper names Blowfish
(Schneier 1993) as the suitable 64-bit block cipher.

This is a from-scratch implementation:

* P-array and S-boxes are initialised from hex digits of pi computed by
  :mod:`repro.ff.pi_digits` (no embedded magic tables);
* the standard key schedule (XOR key into P, then 521 chained encryptions of
  the zero block) is applied;
* :meth:`Blowfish.encrypt_block` is the scalar reference path and
  :meth:`Blowfish.encrypt_vector` encrypts whole numpy ``uint64`` arrays with
  vectorised S-box gathers, which is what the SQL engine's UDF calls.
"""

from __future__ import annotations

import numpy as np

from .pi_digits import pi_words

_N_ROUNDS = 16
_MASK32 = 0xFFFFFFFF


def _initial_boxes() -> tuple[list[int], list[list[int]]]:
    """Return the pi-derived initial P-array (18 words) and S-boxes (4x256)."""
    words = pi_words(18 + 4 * 256)
    p_array = list(words[:18])
    s_boxes = []
    offset = 18
    for _ in range(4):
        s_boxes.append(list(words[offset: offset + 256]))
        offset += 256
    return p_array, s_boxes


class Blowfish:
    """Blowfish keyed to a byte string, operating on 64-bit blocks."""

    def __init__(self, key: bytes):
        if not 1 <= len(key) <= 56:
            raise ValueError("Blowfish keys must be 1 to 56 bytes long")
        self._p, self._s = _initial_boxes()
        self._schedule_key(key)
        # Vector copies for the numpy path.
        self._p_vec = np.array(self._p, dtype=np.uint32)
        self._s_vec = np.array(self._s, dtype=np.uint32)

    @classmethod
    def from_round_key(cls, key_int: int) -> "Blowfish":
        """Build a cipher from an integer key, as drawn per contraction round."""
        key_int &= (1 << 128) - 1
        key = key_int.to_bytes(16, "big")
        return cls(key)

    def _schedule_key(self, key: bytes) -> None:
        key_words = []
        for i in range(18):
            word = 0
            for j in range(4):
                word = (word << 8) | key[(4 * i + j) % len(key)]
            key_words.append(word)
        for i in range(18):
            self._p[i] ^= key_words[i]
        left = right = 0
        for i in range(0, 18, 2):
            left, right = self._encrypt_words(left, right)
            self._p[i] = left
            self._p[i + 1] = right
        for box in range(4):
            for i in range(0, 256, 2):
                left, right = self._encrypt_words(left, right)
                self._s[box][i] = left
                self._s[box][i + 1] = right

    def _f(self, x: int) -> int:
        s = self._s
        a = (x >> 24) & 0xFF
        b = (x >> 16) & 0xFF
        c = (x >> 8) & 0xFF
        d = x & 0xFF
        return ((((s[0][a] + s[1][b]) & _MASK32) ^ s[2][c]) + s[3][d]) & _MASK32

    def _encrypt_words(self, left: int, right: int) -> tuple[int, int]:
        for i in range(_N_ROUNDS):
            left ^= self._p[i]
            right ^= self._f(left)
            left, right = right, left
        left, right = right, left
        right ^= self._p[16]
        left ^= self._p[17]
        return left, right

    def _decrypt_words(self, left: int, right: int) -> tuple[int, int]:
        for i in range(17, 1, -1):
            left ^= self._p[i]
            right ^= self._f(left)
            left, right = right, left
        left, right = right, left
        right ^= self._p[1]
        left ^= self._p[0]
        return left, right

    def encrypt_block(self, block: int) -> int:
        """Encrypt one 64-bit integer (big-endian split into two halves)."""
        left = (block >> 32) & _MASK32
        right = block & _MASK32
        left, right = self._encrypt_words(left, right)
        return (left << 32) | right

    def decrypt_block(self, block: int) -> int:
        """Decrypt one 64-bit integer; inverse of :meth:`encrypt_block`."""
        left = (block >> 32) & _MASK32
        right = block & _MASK32
        left, right = self._decrypt_words(left, right)
        return (left << 32) | right

    def encrypt_vector(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt an array of 64-bit blocks with vectorised arithmetic.

        numpy's unsigned arithmetic wraps modulo 2^32, which is exactly the
        semantics Blowfish's F function needs, so the Feistel network maps
        directly onto whole-array operations plus four S-box gathers per
        round.
        """
        blocks = np.ascontiguousarray(blocks, dtype=np.uint64)
        left = (blocks >> np.uint64(32)).astype(np.uint32)
        right = blocks.astype(np.uint32)
        p = self._p_vec
        s = self._s_vec
        for i in range(_N_ROUNDS):
            left = left ^ p[i]
            a = (left >> np.uint32(24)).astype(np.intp)
            b = ((left >> np.uint32(16)) & np.uint32(0xFF)).astype(np.intp)
            c = ((left >> np.uint32(8)) & np.uint32(0xFF)).astype(np.intp)
            d = (left & np.uint32(0xFF)).astype(np.intp)
            f = ((s[0][a] + s[1][b]) ^ s[2][c]) + s[3][d]
            right = right ^ f
            left, right = right, left
        left, right = right, left
        right = right ^ p[16]
        left = left ^ p[17]
        return (left.astype(np.uint64) << np.uint64(32)) | right.astype(np.uint64)
