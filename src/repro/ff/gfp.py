"""Arithmetic over prime fields GF(p).

Section V-C of the paper notes that an SQL-only implementation of the finite
fields method "could alternatively choose a prime number p known to be larger
than any vertex ID and use normal integer arithmetic modulo p".  This module
provides that variant: deterministic primality testing, prime selection, and
a vectorised affine map ``h(x) = (A*x + B) mod p``.

For vectorised evaluation with plain ``uint64`` numpy arithmetic the product
``A*x`` must not overflow 64 bits, so primes are restricted to below 2^32
(both operands below 2^32 keep the product below 2^64).  The scaled datasets
used in this reproduction all have vertex IDs far below that bound; the
constructor validates the requirement.
"""

from __future__ import annotations

import random

import numpy as np

#: The Mersenne prime 2^31 - 1, the default field order.  Any vertex ID
#: below this value can be randomised with GF(p) arithmetic.
MERSENNE_31 = (1 << 31) - 1

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit integers.

    The witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is known to
    be deterministic for all n < 3.3 * 10^24, which covers the full uint64
    range used here.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _SMALL_PRIMES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def choose_field_prime(max_vertex_id: int) -> int:
    """Pick a prime suitable as a GF(p) order for the given ID domain.

    The prime must exceed every vertex ID (so IDs are field elements) and
    stay below 2^32 (so numpy uint64 products cannot overflow).
    """
    if max_vertex_id < 0:
        raise ValueError("vertex IDs must be non-negative")
    if max_vertex_id >= (1 << 32) - 1:
        raise ValueError(
            "GF(p) method requires vertex IDs below 2^32; "
            "use the GF(2^64) finite fields method instead"
        )
    if max_vertex_id < MERSENNE_31:
        return MERSENNE_31
    return next_prime(max_vertex_id)


class GfpAffineMap:
    """Vectorised evaluator for ``h(x) = (A*x + B) mod p``.

    ``A`` must be non-zero modulo p so the map is a bijection on
    ``{0, ..., p-1}``.  Inputs outside the field raise, because a
    non-injective mapping would silently break the contraction algorithm's
    uniqueness guarantee.
    """

    def __init__(self, a: int, b: int, p: int = MERSENNE_31):
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        if p >= 1 << 32:
            raise ValueError("p must be below 2^32 for overflow-free numpy math")
        a %= p
        b %= p
        if a == 0:
            raise ValueError("A must be non-zero modulo p so that h is a bijection")
        self.a = a
        self.b = b
        self.p = p

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Apply ``h`` to an array of vertex IDs (all must lie in [0, p))."""
        x = np.ascontiguousarray(x, dtype=np.uint64)
        if x.size and int(x.max()) >= self.p:
            raise ValueError("vertex ID outside the field GF(p)")
        return (np.uint64(self.a) * x + np.uint64(self.b)) % np.uint64(self.p)

    def apply_scalar(self, x: int) -> int:
        """Apply ``h`` to one integer."""
        if not 0 <= x < self.p:
            raise ValueError("vertex ID outside the field GF(p)")
        return (self.a * x + self.b) % self.p

    def inverse(self) -> "GfpAffineMap":
        """Return the inverse map ``h^-1(y) = A^-1 * (y - B) mod p``."""
        a_inv = pow(self.a, self.p - 2, self.p)
        return GfpAffineMap(a_inv, (-a_inv * self.b) % self.p, self.p)


def random_affine_map(rng: random.Random, p: int = MERSENNE_31) -> GfpAffineMap:
    """Draw ``A`` uniformly from GF(p) \\ {0} and ``B`` uniformly from GF(p)."""
    a = rng.randrange(1, p)
    b = rng.randrange(0, p)
    return GfpAffineMap(a, b, p)
