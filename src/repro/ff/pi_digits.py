"""Hexadecimal digits of pi, computed from scratch.

The Blowfish cipher (used by the paper's "encryption method" of vertex-ID
randomisation, Section V-C) initialises its P-array and S-boxes with the
first 8336 hexadecimal digits of the fractional part of pi.  Rather than
embedding a 33 kB table of magic constants, this module computes the digits
with fixed-point integer arithmetic using Machin's formula

    pi = 16 * arctan(1/5) - 4 * arctan(1/239)

which converges quickly and only needs exact big-integer operations.  The
result is validated in the test suite against the first published Blowfish
P-array words (for example ``P[0] == 0x243f6a88``).
"""

from __future__ import annotations

import functools

#: Extra binary digits carried during the fixed-point computation so that
#: truncation errors never reach the digits we hand out.
_GUARD_BITS = 64


def _arctan_inverse(x: int, one: int) -> int:
    """Return ``arctan(1/x) * one`` using the Taylor series.

    ``one`` is the fixed-point scale factor.  The series terminates once the
    scaled term underflows to zero, which bounds the truncation error by one
    unit in the last place of the scale.
    """
    if x <= 1:
        raise ValueError("series only converges quickly for x > 1")
    total = 0
    power = one // x
    k = 0
    x_squared = x * x
    while power:
        term = power // (2 * k + 1)
        if k % 2 == 0:
            total += term
        else:
            total -= term
        power //= x_squared
        k += 1
    return total


def pi_fractional_hex_digits(n_digits: int) -> list[int]:
    """Return the first ``n_digits`` hex digits of pi's fractional part.

    Each returned element is an integer in ``range(16)``.  The first few
    digits are ``2, 4, 3, f, 6, a, 8, 8, ...`` because
    pi = 3.243f6a8885a3... in base 16.
    """
    if n_digits <= 0:
        raise ValueError("n_digits must be positive")
    one = 1 << (4 * n_digits + _GUARD_BITS)
    pi_scaled = 16 * _arctan_inverse(5, one) - 4 * _arctan_inverse(239, one)
    fraction = pi_scaled - 3 * one
    if not 0 < fraction < one:
        raise AssertionError("pi computation out of range")
    digits_int = fraction >> _GUARD_BITS
    digits = []
    for i in range(n_digits):
        shift = 4 * (n_digits - 1 - i)
        digits.append((digits_int >> shift) & 0xF)
    return digits


@functools.lru_cache(maxsize=2)
def pi_words(n_words: int) -> tuple[int, ...]:
    """Return ``n_words`` 32-bit words of pi's fractional hex expansion.

    Word ``i`` packs hex digits ``8*i .. 8*i+7`` big-endian, exactly the way
    Blowfish consumes them: word 0 is ``0x243f6a88``.
    """
    digits = pi_fractional_hex_digits(8 * n_words)
    words = []
    for w in range(n_words):
        value = 0
        for d in digits[8 * w: 8 * w + 8]:
            value = (value << 4) | d
        words.append(value)
    return tuple(words)
