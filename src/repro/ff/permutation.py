"""Vertex-ID randomisation methods (Section V-C of the paper).

Randomised Contraction needs, at every contraction round, a fresh random (or
pseudo-random) ordering of the current vertex IDs.  The paper describes
three practical ways of getting one, all reproduced here:

``random reals``
    Draw one uniform real per vertex and order vertices by it.  This gives
    *full randomisation* (a uniform permutation) and hence the stronger
    Appendix-B contraction bound, but the random table must be shipped to
    every node of the cluster.  In SQL this is a *table strategy*: the round
    function exists only as a per-vertex table that queries join against.

``encryption``
    Encrypt vertex IDs with Blowfish under a fresh random key.  A bijection
    by construction; only the key crosses the network.  A *pointwise
    strategy*: usable as a scalar SQL expression.

``finite fields``
    ``h_i(w) = A_i*w + B_i`` over GF(2^64) (or GF(p) in an SQL-only
    setting), with ``A_i != 0`` drawn per round.  Also pointwise, much
    cheaper than encryption, and — unlike encryption — *affine*, which is
    what lets the fast Figure-4 variant collapse the stack of per-round
    relabellings into a single accumulated ``(A, B)`` pair.

An ``identity`` method (no randomisation) is included to reproduce the
worst-case demonstrations of Figure 2 and Section IV.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .blowfish import Blowfish
from .gf2_64 import MASK64, Gf2AffineMap, gf2_mul, to_signed, to_unsigned
from .gfp import MERSENNE_31, GfpAffineMap

#: Strategy tag: the round function can be evaluated pointwise as an SQL
#: scalar expression.
POINTWISE = "pointwise"
#: Strategy tag: the round function only exists as a materialised per-vertex
#: random table that queries must join against.
TABLE = "table"


@dataclass(frozen=True)
class AffineField:
    """The handful of field operations Figure 4 needs for key accumulation.

    The fast variant composes per-round affine maps back-to-front:
    ``(A, B) <- (A*alpha, A*beta + B)``.  Only multiplication and addition
    in the underlying field are required.
    """

    name: str
    mul: Callable[[int, int], int]
    add: Callable[[int, int], int]
    one: int
    zero: int


GF2_64_FIELD = AffineField(
    name="GF(2^64)",
    mul=gf2_mul,
    add=lambda a, b: (a ^ b) & MASK64,
    one=1,
    zero=0,
)


def gfp_field(p: int) -> AffineField:
    """Return the :class:`AffineField` view of GF(p)."""
    return AffineField(
        name=f"GF({p})",
        mul=lambda a, b: (a * b) % p,
        add=lambda a, b: (a + b) % p,
        one=1,
        zero=0,
    )


class RoundFunction(ABC):
    """One round's bijection ``h_i`` over the vertex-ID domain."""

    #: ``POINTWISE`` or ``TABLE``.
    strategy: str

    @abstractmethod
    def apply(self, x: np.ndarray) -> np.ndarray:
        """Evaluate ``h_i`` on an array of vertex IDs."""

    @abstractmethod
    def apply_scalar(self, x: int) -> int | float:
        """Evaluate ``h_i`` on one vertex ID (reference path)."""


class PointwiseRound(RoundFunction):
    """A round function usable as a scalar SQL expression."""

    strategy = POINTWISE

    @abstractmethod
    def sql_expr(self, column: str) -> str:
        """Render ``h_i(column)`` as an SQL expression string."""

    #: Set for affine rounds: the (a, b) pair and its field, enabling the
    #: Figure-4 key-stack accumulation.  ``None`` for non-affine rounds
    #: (encryption), which must use the Figure-3 composition instead.
    affine: Optional[tuple[int, int, AffineField]] = None


class FiniteFieldRound(PointwiseRound):
    """``h(x) = A*x + B`` over GF(2^64); the paper's headline method."""

    def __init__(self, a: int, b: int):
        self._map = Gf2AffineMap(a, b)
        self.a = to_unsigned(a)
        self.b = to_unsigned(b)
        self.affine = (self.a, self.b, GF2_64_FIELD)

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self._map.apply(x)

    def apply_scalar(self, x: int) -> int:
        return self._map.apply_scalar(x)

    def sql_expr(self, column: str) -> str:
        return f"axplusb({to_signed(self.a)}, {column}, {to_signed(self.b)})"


class PrimeFieldRound(PointwiseRound):
    """``h(x) = (A*x + B) mod p``; the SQL-only finite-field alternative."""

    def __init__(self, a: int, b: int, p: int):
        self._map = GfpAffineMap(a, b, p)
        self.a = self._map.a
        self.b = self._map.b
        self.p = p
        self.affine = (self.a, self.b, gfp_field(p))

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self._map.apply(x)

    def apply_scalar(self, x: int) -> int:
        return self._map.apply_scalar(x)

    def sql_expr(self, column: str) -> str:
        return f"axbmodp({self.a}, {column}, {self.b}, {self.p})"


class EncryptionRound(PointwiseRound):
    """``h(x) = Blowfish_k(x)``; pseudo-random but not affine."""

    def __init__(self, key: int):
        self.key = key & MASK64
        self._cipher = Blowfish.from_round_key(self.key)

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self._cipher.encrypt_vector(x)

    def apply_scalar(self, x: int) -> int:
        return self._cipher.encrypt_block(to_unsigned(x))

    def sql_expr(self, column: str) -> str:
        return f"blowfish({to_signed(self.key)}, {column})"


class IdentityRound(PointwiseRound):
    """``h(x) = x``; deliberately defeats randomisation for worst-case demos."""

    def __init__(self) -> None:
        self.affine = (1, 0, GF2_64_FIELD)

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(x, dtype=np.uint64)

    def apply_scalar(self, x: int) -> int:
        return to_unsigned(x)

    def sql_expr(self, column: str) -> str:
        return column


class RandomRealsRound(RoundFunction):
    """Uniform random reals per vertex: full randomisation, table strategy.

    The round function is realised lazily: :meth:`values_for` draws the
    random reals for the vertex set of the current contraction round, which
    is exactly the table the SQL implementation materialises and joins
    against.  Scalar/array ``apply`` memoise draws so repeated queries see a
    consistent function, mirroring a materialised database table.
    """

    strategy = TABLE

    def __init__(self, seed: int):
        self._rng = np.random.default_rng(seed)
        self._memo: dict[int, float] = {}

    def values_for(self, vertices: np.ndarray) -> np.ndarray:
        """Draw (and memoise) uniform [0, 1) reals for the given vertices."""
        vertices = np.ascontiguousarray(vertices, dtype=np.int64)
        values = np.empty(vertices.shape[0], dtype=np.float64)
        for i, v in enumerate(vertices.tolist()):
            if v not in self._memo:
                self._memo[v] = float(self._rng.random())
            values[i] = self._memo[v]
        return values

    def apply(self, x: np.ndarray) -> np.ndarray:
        return self.values_for(np.asarray(x).astype(np.int64))

    def apply_scalar(self, x: int) -> float:
        return float(self.values_for(np.array([x], dtype=np.int64))[0])


class RandomisationMethod(ABC):
    """Factory for per-round vertex-ID randomisation functions."""

    #: Human-readable method name, used in reports and ablation tables.
    name: str
    #: ``POINTWISE`` or ``TABLE``; decides which SQL formulation RC uses.
    strategy: str

    @abstractmethod
    def new_round(self, rng: random.Random) -> RoundFunction:
        """Draw the randomness for one contraction round."""


class FiniteFieldMethod(RandomisationMethod):
    """GF(2^64) affine maps — the paper's recommended method."""

    name = "finite-fields"
    strategy = POINTWISE

    def new_round(self, rng: random.Random) -> FiniteFieldRound:
        a = 0
        while a == 0:
            a = rng.getrandbits(64)
        b = rng.getrandbits(64)
        return FiniteFieldRound(a, b)

    def affine_sql(self, a: int, b: int, column: str) -> str:
        """SQL for an accumulated affine pair (Figure 4's key stack)."""
        return f"axplusb({to_signed(a)}, {column}, {to_signed(b)})"


class PrimeFieldMethod(RandomisationMethod):
    """GF(p) affine maps — the SQL-only variant (vertex IDs must be < p)."""

    name = "prime-field"
    strategy = POINTWISE

    def __init__(self, p: int = MERSENNE_31):
        self.p = p

    def new_round(self, rng: random.Random) -> PrimeFieldRound:
        a = rng.randrange(1, self.p)
        b = rng.randrange(0, self.p)
        return PrimeFieldRound(a, b, self.p)

    def affine_sql(self, a: int, b: int, column: str) -> str:
        """SQL for an accumulated affine pair (Figure 4's key stack)."""
        return f"axbmodp({a % self.p}, {column}, {b % self.p}, {self.p})"


class EncryptionMethod(RandomisationMethod):
    """Blowfish encryption of vertex IDs under a fresh key per round."""

    name = "encryption"
    strategy = POINTWISE

    def new_round(self, rng: random.Random) -> EncryptionRound:
        return EncryptionRound(rng.getrandbits(64))


class RandomRealsMethod(RandomisationMethod):
    """One uniform random real per vertex per round (full randomisation)."""

    name = "random-reals"
    strategy = TABLE

    def new_round(self, rng: random.Random) -> RandomRealsRound:
        return RandomRealsRound(rng.getrandbits(63))


class IdentityMethod(RandomisationMethod):
    """No randomisation at all; exists to exhibit the worst cases."""

    name = "identity"
    strategy = POINTWISE

    def new_round(self, rng: random.Random) -> IdentityRound:
        return IdentityRound()

    def affine_sql(self, a: int, b: int, column: str) -> str:
        """Identity rounds are (1, 0) over GF(2^64); any accumulation of
        them stays (1, 0), so this is always the identity expression."""
        return f"axplusb({to_signed(a)}, {column}, {to_signed(b)})"


_METHODS: dict[str, Callable[[], RandomisationMethod]] = {
    "finite-fields": FiniteFieldMethod,
    "prime-field": PrimeFieldMethod,
    "encryption": EncryptionMethod,
    "random-reals": RandomRealsMethod,
    "identity": IdentityMethod,
}


def get_method(name: str) -> RandomisationMethod:
    """Look up a randomisation method by its registry name."""
    try:
        factory = _METHODS[name]
    except KeyError:
        known = ", ".join(sorted(_METHODS))
        raise ValueError(f"unknown randomisation method {name!r}; known: {known}")
    return factory()


def method_names() -> list[str]:
    """Names of all registered randomisation methods."""
    return sorted(_METHODS)
