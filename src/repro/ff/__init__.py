"""Finite fields, ciphers and randomisation methods.

This package is the numeric substrate for the paper's Section V-C: GF(2^64)
carry-less arithmetic (the C UDF ``axplusb`` of Appendix A, reimplemented in
Python/numpy), GF(p) modular arithmetic, the Blowfish cipher with pi-derived
boxes, and the :class:`~repro.ff.permutation.RandomisationMethod` hierarchy
that Randomised Contraction draws per-round bijections from.
"""

from .blowfish import Blowfish
from .gf2_64 import (
    IRREDUCIBLE_POLY,
    Gf2AffineMap,
    gf2_axplusb,
    gf2_inv,
    gf2_mul,
    gf2_pow,
    to_signed,
    to_unsigned,
)
from .gfp import MERSENNE_31, GfpAffineMap, choose_field_prime, is_prime, next_prime
from .permutation import (
    EncryptionMethod,
    FiniteFieldMethod,
    IdentityMethod,
    PrimeFieldMethod,
    RandomisationMethod,
    RandomRealsMethod,
    get_method,
    method_names,
)

__all__ = [
    "Blowfish",
    "EncryptionMethod",
    "FiniteFieldMethod",
    "Gf2AffineMap",
    "GfpAffineMap",
    "IRREDUCIBLE_POLY",
    "IdentityMethod",
    "MERSENNE_31",
    "PrimeFieldMethod",
    "RandomRealsMethod",
    "RandomisationMethod",
    "choose_field_prime",
    "gf2_axplusb",
    "gf2_inv",
    "gf2_mul",
    "gf2_pow",
    "get_method",
    "is_prime",
    "method_names",
    "next_prime",
    "to_signed",
    "to_unsigned",
]
