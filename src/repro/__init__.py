"""Reproduction of "In-database connected component analysis" (ICDE 2020).

The package layers, bottom to top:

* :mod:`repro.ff` — finite fields GF(2^64)/GF(p), Blowfish, and the
  randomisation methods of Section V-C;
* :mod:`repro.sqlengine` — an in-process, MPP-simulating SQL engine (the
  substitute for the paper's Apache HAWQ cluster) with full accounting of
  rows/bytes written, peak space and data motion;
* :mod:`repro.spark` — a deliberately less-optimised row-at-a-time backend
  standing in for Spark SQL (Section VII-C);
* :mod:`repro.graphs` — edge-list containers and the synthetic dataset
  generators reproducing the roles of Table II;
* :mod:`repro.core` — Randomised Contraction plus the Hash-to-Min,
  Two-Phase, Cracker and BFS baselines, all expressed as SQL against the
  engine, with a union-find ground truth;
* :mod:`repro.analysis` and :mod:`repro.bench` — Figure-5 analysis and the
  harness regenerating every table and figure of the evaluation.

The one-call public API is :func:`repro.connected_components`.
"""

from .core.runner import ALGORITHMS, CCResult, connected_components

__version__ = "1.0.0"

__all__ = ["ALGORITHMS", "CCResult", "connected_components", "__version__"]
