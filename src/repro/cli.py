"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Compute connected components of a dataset (by registry name or CSV
    edge file) with any algorithm and print the run metrics.

``datasets``
    List the Table II dataset registry, optionally building each at a
    scale to report actual sizes.

``bench``
    Run the Table III/IV/V measurement grid for chosen datasets and
    algorithms and print the paper-style tables.

``sql``
    Ad-hoc SQL over a dataset loaded as ``edges(v1, v2)``, with engine
    cache statistics printed after the run.

``gamma``
    Monte-Carlo contraction-factor measurement (Theorem 1 / Appendix B)
    for a dataset under a randomisation method.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import bytes_to_human
from .bench import (
    Harness,
    mean_outcomes,
    render_figure6,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)
from .core import connected_components, count_components, make_algorithm
from .core.contraction_theory import monte_carlo_gamma
from .core.randomised_contraction import RandomisedContraction
from .graphs import TABLE_DATASETS, build_dataset, dataset_names, read_csv
from .graphs.datasets import get_dataset_spec
from .spark import SparkSQLDatabase


def _load_graph(source: str, scale: float):
    """A dataset registry name, or a path to a two-column CSV file."""
    if source in dataset_names():
        return build_dataset(source, scale=scale)
    path = Path(source)
    if path.exists():
        return read_csv(path)
    raise SystemExit(
        f"error: {source!r} is neither a dataset name "
        f"({', '.join(dataset_names())}) nor an existing CSV file"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    edges = _load_graph(args.graph, args.scale)
    if args.algorithm == "rc" and (args.method != "finite-fields"
                                   or args.variant != "fast"):
        algorithm = RandomisedContraction(method=args.method,
                                          variant=args.variant)
    else:
        algorithm = make_algorithm(args.algorithm)
    db = SparkSQLDatabase() if args.backend == "spark" else None
    result = connected_components(
        edges, algorithm, seed=args.seed, db=db, validate=args.validate
    )
    run = result.run
    print(f"graph           : {args.graph}  "
          f"(|V| = {edges.n_vertices:,}, |E| = {edges.n_edges:,})")
    print(f"algorithm       : {run.algorithm} on {args.backend}")
    print(f"components      : {result.n_components:,}")
    print(f"rounds          : {run.rounds}")
    print(f"SQL queries     : {run.sql_queries}")
    print(f"wall time       : {run.elapsed_seconds:.3f}s")
    print(f"data written    : {bytes_to_human(run.stats.bytes_written)}")
    print(f"peak live space : {bytes_to_human(run.stats.peak_live_bytes)}")
    print(f"data motion     : {bytes_to_human(run.stats.motion_bytes)}")
    if args.validate:
        print("validation      : labels match union-find ground truth")
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    if not args.build:
        width = max(len(n) for n in dataset_names())
        for name in dataset_names():
            spec = get_dataset_spec(name)
            print(f"{name:{width}s}  {spec.description}")
        return 0
    rows = []
    for name in TABLE_DATASETS:
        edges = build_dataset(name, scale=args.scale)
        rows.append((name, edges.n_vertices, edges.n_edges,
                     count_components(edges)))
    print(render_table2(rows))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    harness = Harness(scale=args.scale)
    outcomes = mean_outcomes(
        harness.run_suite(
            dataset_names=args.datasets or None,
            algorithms=args.algorithms or None,
            reps=args.reps,
        )
    )
    print(render_table3(outcomes))
    print()
    print(render_table4(outcomes))
    print()
    print(render_table5(outcomes))
    print()
    print(render_figure6(outcomes))
    return 0


def _split_statements(sql: str) -> list[str]:
    """Split on ';' outside string literals and comments.

    Mirrors the engine lexer's surface: single-quoted strings ('' escapes
    toggle twice, which this scanner handles naturally), ``--`` line
    comments, and ``/* */`` block comments.
    """
    statements: list[str] = []
    current: list[str] = []
    i, n = 0, len(sql)
    in_string = in_line_comment = in_block_comment = False
    while i < n:
        ch = sql[i]
        if in_line_comment:
            in_line_comment = ch != "\n"
        elif in_block_comment:
            if sql.startswith("*/", i):
                current.append("*/")
                i += 2
                in_block_comment = False
                continue
        elif in_string:
            in_string = ch != "'"
        elif ch == "'":
            in_string = True
        elif sql.startswith("--", i):
            in_line_comment = True
        elif sql.startswith("/*", i):
            # Consume both opener chars so "/*/" does not self-close.
            in_block_comment = True
            current.append("/*")
            i += 2
            continue
        elif ch == ";":
            statements.append("".join(current))
            current = []
            i += 1
            continue
        current.append(ch)
        i += 1
    statements.append("".join(current))
    # Strip surrounding whitespace: template normalisation is text-exact,
    # so " select ..." and "select ..." would otherwise cache separately.
    return [s.strip() for s in statements if s.strip()]


def _cmd_sql(args: argparse.Namespace) -> int:
    """Ad-hoc SQL over a dataset loaded as table ``edges(v1, v2)``."""
    from .graphs.io import load_edges_into
    from .sqlengine import Database
    from .sqlengine.errors import SqlError

    edges = _load_graph(args.graph, args.scale)
    db = Database(pool_backend=args.backend, pool_workers=args.workers)
    load_edges_into(db, "edges", edges)
    db.stats.reset()
    for statement in _split_statements(args.sql):
        try:
            result = db.execute(statement)
        except SqlError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if result._relation is None:
            print(f"({result.rowcount} row(s) affected)")
            continue
        relation = result.relation
        # Materialise only the rows being shown.
        shown = result.rows(limit=args.max_rows)
        print("  ".join(relation.display_names))
        for row in shown:
            print("  ".join(str(v) for v in row))
        if relation.n_rows > len(shown):
            print(f"... ({relation.n_rows:,} rows total, "
                  f"showing {len(shown)})")
    stats = db.stats
    print(f"-- {stats.queries} queries, "
          f"plan cache {stats.plan_cache_hits}/{stats.plan_cache_hits + stats.plan_cache_misses} hit, "
          f"index cache {stats.index_cache_hits} hits, "
          f"motion {bytes_to_human(stats.motion_bytes)}")
    if args.stats:
        print(render_engine_stats(stats))
    return 0


def render_engine_stats(stats) -> str:
    """Full EngineStats counter dump for ``repro sql --stats``."""
    planned = stats.physical_plan_hits + stats.physical_plan_misses
    lines = [
        "engine statistics:",
        f"  queries            : {stats.queries}",
        f"  rows written       : {stats.rows_written:,}",
        f"  bytes written      : {bytes_to_human(stats.bytes_written)}",
        f"  peak live space    : {bytes_to_human(stats.peak_live_bytes)}",
        f"  data motion        : {bytes_to_human(stats.motion_bytes)}"
        f"  (broadcast {bytes_to_human(stats.broadcast_bytes)})",
        f"  plan cache         : {stats.plan_cache_hits} hits / "
        f"{stats.plan_cache_misses} misses",
        f"  physical plans     : {stats.physical_plan_hits} hits / "
        f"{stats.physical_plan_misses} misses / "
        f"{stats.physical_plan_invalidations} invalidated"
        + (f"  (hit rate {stats.physical_plan_hits / planned:.1%})"
           if planned else ""),
        f"  index cache        : {stats.index_cache_hits} hits / "
        f"{stats.index_cache_misses} misses",
        f"  joins pruned       : {stats.joins_pruned}",
        f"  fused pipelines    : {stats.fused_pipelines} DISTINCT / "
        f"{stats.fused_group_pipelines} GROUP BY / "
        f"{stats.join_chain_fusions} join chains "
        f"({stats.left_chain_fusions} with outer joins, "
        f"{stats.fused_outer_groups} outer groups)",
        f"  hash DISTINCTs     : {stats.hash_distincts}",
        f"  group sorts skipped: {stats.group_sorts_skipped}",
        f"  parallel partitions: {stats.parallel_partitions}"
        f"  (indexed probes {stats.parallel_indexed_probes}, "
        f"dense probes {stats.parallel_dense_probes})",
        f"  result cache       : {stats.subquery_cache_hits} hits / "
        f"{stats.subquery_cache_misses} misses / "
        f"{stats.subquery_cache_evictions} evicted",
        f"  overlapped composes: {stats.overlapped_compositions}"
        f"  (dataflow overlaps {stats.dataflow_overlaps}, "
        f"effect-set cache hits {stats.effects_cache_hits})",
        f"  union arm overlaps : {stats.union_arm_overlaps}",
        f"  process backend    : {stats.process_tasks} tasks / "
        f"{bytes_to_human(stats.shm_bytes_exported)} shm exported / "
        f"{stats.stats_merges} stat merges",
    ]
    return "\n".join(lines)


def _cmd_gamma(args: argparse.Namespace) -> int:
    edges = _load_graph(args.graph, args.scale)
    mean, stderr = monte_carlo_gamma(
        edges, args.method, rounds=args.rounds, seed=args.seed
    )
    bound = "2/3" if args.method == "random-reals" else "3/4"
    print(f"graph   : {args.graph} (|V| = {edges.n_vertices:,})")
    print(f"method  : {args.method}")
    print(f"gamma   : {mean:.4f} +- {stderr:.4f}  over {args.rounds} rounds")
    print(f"bound   : {bound} "
          f"({'OK' if mean <= (2/3 if bound == '2/3' else 3/4) + 0.02 else 'VIOLATED'})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="In-database connected component analysis (ICDE 2020) "
                    "— reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compute connected components")
    run.add_argument("graph", help="dataset name or CSV edge file")
    run.add_argument("--algorithm", "-a", default="rc",
                     choices=["rc", "hm", "tp", "cr", "bfs", "squaring"])
    run.add_argument("--method", default="finite-fields",
                     choices=["finite-fields", "prime-field", "encryption",
                              "random-reals", "identity"],
                     help="randomisation method (rc only)")
    run.add_argument("--variant", default="fast",
                     choices=["fast", "deterministic-space"],
                     help="RC variant: Figure 4 (fast) or Figure 3")
    run.add_argument("--backend", default="mpp", choices=["mpp", "spark"])
    run.add_argument("--scale", type=float, default=0.25)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--validate", action="store_true",
                     help="check against union-find ground truth")
    run.set_defaults(fn=_cmd_run)

    datasets = sub.add_parser("datasets", help="list or build the registry")
    datasets.add_argument("--build", action="store_true",
                          help="generate each dataset and print Table II")
    datasets.add_argument("--scale", type=float, default=0.25)
    datasets.set_defaults(fn=_cmd_datasets)

    bench = sub.add_parser("bench", help="run the Table III/IV/V grid")
    bench.add_argument("--datasets", nargs="*", default=None)
    bench.add_argument("--algorithms", nargs="*", default=None)
    bench.add_argument("--scale", type=float, default=0.25)
    bench.add_argument("--reps", type=int, default=1)
    bench.set_defaults(fn=_cmd_bench)

    sql = sub.add_parser("sql", help="run ad-hoc SQL over a dataset")
    sql.add_argument("graph", help="dataset name or CSV edge file, loaded "
                                   "as table edges(v1, v2)")
    sql.add_argument("sql", help="semicolon-separated SQL statements")
    sql.add_argument("--scale", type=float, default=0.25)
    sql.add_argument("--max-rows", type=int, default=25,
                     help="rows of each result to materialise and print")
    sql.add_argument("--stats", action="store_true",
                     help="print the full EngineStats counter dump "
                          "(plan/physical-plan/index caches, fused pipelines, "
                          "motion) after execution")
    sql.add_argument("--backend", default=None, choices=["thread", "process"],
                     help="segment pool backend: threads (default) or worker "
                          "processes over shared-memory columns "
                          "(REPRO_POOL_BACKEND sets the default)")
    sql.add_argument("--workers", type=int, default=None,
                     help="force the pool's worker count (default: "
                          "min(segments, cpu count))")
    sql.set_defaults(fn=_cmd_sql)

    gamma = sub.add_parser("gamma", help="measure the contraction factor")
    gamma.add_argument("graph", help="dataset name or CSV edge file")
    gamma.add_argument("--method", default="finite-fields")
    gamma.add_argument("--rounds", type=int, default=16)
    gamma.add_argument("--scale", type=float, default=0.25)
    gamma.add_argument("--seed", type=int, default=0)
    gamma.set_defaults(fn=_cmd_gamma)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
