# Development entry points. The engine lives under src/, so every target
# exports PYTHONPATH rather than requiring an editable install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-unit fuzz bench bench-quick bench-engine bench-compare \
	bench-baseline clean

## tier-1: the full unit + benchmark collection, fail-fast
test:
	$(PYTHON) -m pytest -x -q

## unit tests only — no timing-threshold benchmarks, safe for noisy CI runners
test-unit:
	$(PYTHON) -m pytest -x -q tests/

## differential fuzz harness (REPRO_FUZZ_ROUNDS / REPRO_FUZZ_SEED env knobs)
fuzz:
	$(PYTHON) -m pytest -q tests/test_differential_fuzz.py

## the complete paper-reproduction benchmark grid (Tables III-V, figures)
bench:
	$(PYTHON) -m pytest -q benchmarks/

## a fast benchmark smoke pass at reduced scale
bench-quick:
	REPRO_SCALE=0.1 $(PYTHON) -m pytest -q benchmarks/ -k "engine or table3"

## engine kernel/cache micro-benchmarks only (writes BENCH_engine.json)
bench-engine:
	$(PYTHON) -m pytest -q benchmarks/test_bench_engine_microbench.py

## diff fresh BENCH_engine.json against the committed baseline (informational)
bench-compare:
	$(PYTHON) scripts/bench_compare.py benchmarks/baselines/BENCH_engine.json \
		benchmarks/results/BENCH_engine.json

## adopt fresh bench-engine results as the committed baseline — run after a
## PR deliberately moves the numbers or adds metric sections (e.g.
## left_chain / dataflow), then commit the updated baseline file.  Always
## re-runs bench-engine so a stale results file can never become the
## baseline.
bench-baseline: bench-engine
	cp benchmarks/results/BENCH_engine.json \
		benchmarks/baselines/BENCH_engine.json

# benchmarks/results is regenerated scratch output; the committed
# comparison baseline lives in benchmarks/baselines/ and is never cleaned.
clean:
	rm -rf benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
